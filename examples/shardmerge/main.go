// Shardmerge: distributed hunting in one process. Four sharded hunts
// (shard i of 4, stride-partitioned seed space, a quarter of the budget
// each) run the same campaign a single hunt would, and their corpora are
// unioned via corpus.Merge into one global bug set — the same
// signature-keyed, per-origin-ledger merge cmd/conjherd performs over
// HTTP against a fleet of conjserved replicas. The merge is associative,
// commutative and idempotent, so re-merging a shard (a coordinator
// re-pulling an unchanged snapshot) changes nothing, and the merged
// corpus matches what one unsharded hunt of the full budget finds.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/corpus"
)

func main() {
	ctx := context.Background()
	eng := pokeholes.NewEngine()
	base := pokeholes.HuntSpec{
		Family: pokeholes.GC, Version: "trunk", Levels: []string{"O2"},
		Budget: 32, Seed0: 900, BatchSize: 8, NoMinimize: true,
	}

	// The aggregator never hunts: no shard identity, counters stay zero,
	// everything lives in the per-origin merge ledgers.
	global := corpus.New()
	const shards = 4
	for i := 0; i < shards; i++ {
		spec := base
		spec.Budget = base.Budget / shards
		spec.ShardIndex, spec.ShardCount = i, shards
		rep, err := eng.Hunt(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		st, err := global.Merge(rep.Corpus)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d/%d: %d programs, %d buckets -> merged +%d new, %d reconciled (%d global)\n",
			i, shards, rep.Programs, rep.Corpus.Len(), st.NewBuckets, st.MergedBuckets, global.Len())
	}

	// Idempotence: re-merging shard 0's snapshot is a no-op.
	rep0, err := eng.Hunt(ctx, func() pokeholes.HuntSpec {
		s := base
		s.Budget = base.Budget / shards
		s.ShardCount = shards
		return s
	}())
	if err != nil {
		log.Fatal(err)
	}
	st, err := global.Merge(rep0.Corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-merge shard 0/%d: +%d new (idempotent)\n\n", shards, st.NewBuckets)

	fmt.Printf("global: %d unique bugs, %d violations, %d programs across origins\n",
		global.Len(), global.Violations(), global.TotalPrograms())
	for _, b := range global.Buckets() {
		fmt.Printf("  %-58s seed %-6d x%d\n", b.Sig, b.Seed, b.Count)
	}
}
