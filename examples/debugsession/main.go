// Debugsession: steps through the paper's §1 motivating example (gcc bug
// 105161) at several optimization levels and shows how variable j's
// availability differs — including the hollow-DIE case where the constant
// was recoverable but the compiler lost it.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// The §1 example: j is constant zero, (j)*k constant-folds, and the
// defective toolchain loses j's value even though DW_AT_const_value could
// have carried it.
const src = `
int b[10][2];
int a;
int main(void) {
  int i = 0;
  int j;
  int k;
  for (; i < 10; i = i + 1) {
    j = 0;
    k = 0;
    for (; k < 1; k = k + 1) {
      a = b[i][j * k];
    }
  }
  return 0;
}
`

func main() {
	eng := pokeholes.NewEngine()
	ctx := context.Background()
	prog, err := pokeholes.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pokeholes.Render(prog))
	for _, level := range []string{"O0", "Og", "O1", "O2"} {
		cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: level}
		report, err := eng.Check(ctx, prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-%s: j at the array-store line:\n", level)
		for _, line := range report.Trace.HitLines() {
			stop := report.Trace.Stops[line]
			j := stop.Var("j")
			if j.State == 0 { // not visible at this line's frame
				continue
			}
			fmt.Printf("  line %2d: j=%v\n", line, j.State)
		}
		for _, v := range report.Violations {
			if v.Var == "j" || v.Var == "k" || v.Var == "i" {
				fmt.Println("  ", v)
			}
		}
	}
}
