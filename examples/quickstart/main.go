// Quickstart: compile a small program at -O2, debug it, and check the three
// conjectures — the library's minimal end-to-end flow on the Engine API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const src = `
int g;
extern void opaque(int x);
int main(void) {
  int answer = 6 * 7;
  g = answer;
  opaque(answer);
  return 0;
}
`

func main() {
	eng := pokeholes.NewEngine()
	prog, err := pokeholes.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	report, err := eng.Check(context.Background(), prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: stepped %d lines\n", cfg, len(report.Trace.Stops))
	for _, line := range report.Trace.HitLines() {
		fmt.Println(" ", report.Trace.Stops[line])
	}
	if len(report.Violations) == 0 {
		fmt.Println("no conjecture violations")
		return
	}
	for _, v := range report.Violations {
		fmt.Println("violation:", v)
	}
}
