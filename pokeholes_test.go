package pokeholes

import (
	"context"
	"strings"
	"testing"
)

const facadeSrc = `
int g;
extern void opaque(int x);
int main(void) {
  int x = 40 + 2;
  g = x;
  opaque(x);
  return 0;
}
`

func TestFacadeRoundTrip(t *testing.T) {
	prog, err := ParseProgram(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Render(prog), "opaque(x);") {
		t.Error("render lost the call")
	}
	cfg := Config{Family: GC, Version: "trunk", Level: "O2"}
	report, err := NewEngine().Check(context.Background(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Trace.Stops) == 0 {
		t.Fatal("empty trace")
	}
	// A constant-folded x must still be available at the opaque call on a
	// healthy path; any violation here must at least be well-formed.
	for _, v := range report.Violations {
		if v.Conjecture < 1 || v.Conjecture > 3 || v.Var == "" {
			t.Errorf("malformed violation %+v", v)
		}
	}
}

func TestFacadeMeasure(t *testing.T) {
	prog, err := ParseProgram(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewEngine().Measure(context.Background(), prog, Config{Family: GC, Version: "trunk", Level: "Og"})
	if err != nil {
		t.Fatal(err)
	}
	if m.LineCoverage <= 0 || m.LineCoverage > 1 {
		t.Errorf("line coverage out of range: %v", m.LineCoverage)
	}
	if m.Product > m.LineCoverage+1e-9 {
		t.Errorf("product exceeds line coverage: %+v", m)
	}
}

func TestFacadeGenerateAndFullPipeline(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	for seed := int64(0); seed < 5; seed++ {
		prog := GenerateProgram(seed)
		for _, cfg := range []Config{
			{Family: GC, Version: "trunk", Level: "O2"},
			{Family: CL, Version: "trunkstar", Level: "Og"},
		} {
			report, err := eng.Check(ctx, prog, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg, err)
			}
			for _, v := range report.Violations {
				exe, err := eng.Compile(ctx, prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ClassifyDWARF(exe, v); err != nil {
					t.Errorf("classification failed for %v: %v", v, err)
				}
			}
		}
	}
}

func TestFacadeO0IsReference(t *testing.T) {
	prog, err := ParseProgram(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	report, err := NewEngine().Check(context.Background(), prog, Config{Family: CL, Version: "trunk", Level: "O0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violations) != 0 {
		t.Errorf("O0 must be violation-free: %v", report.Violations)
	}
}
