package pokeholes_test

// Race/load tests for the serving layer: concurrent mixed traffic under
// the race detector, request batching verified against the engine's work
// counters, admission-control rejections, per-request deadlines, and a
// full Serve lifecycle with the goroutine-leak bracket.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// servePost fires one POST and returns (status, body).
func servePost(t *testing.T, client *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", url, err)
	}
	return resp.StatusCode, out
}

// checkBody renders the /check (and /triage) request for a program.
func checkBody(src string) string {
	return fmt.Sprintf(`{"source":%q,"family":"gc","version":"trunk","level":"O2"}`, src)
}

func sweepBody(src string) string {
	return fmt.Sprintf(`{"source":%q,"family":"gc","versions":["v8","trunk"],"levels":["O1","O2"]}`, src)
}

// TestServeConcurrentMixedDeterministic fires 100 concurrent mixed
// requests (check, sweep and triage over three distinct programs) and
// asserts that every request succeeds, that identical requests produce
// byte-identical bodies, and that the whole burst cost exactly one
// frontend per distinct program — the batching claim, verified through
// EngineStats rather than timing.
func TestServeConcurrentMixedDeterministic(t *testing.T) {
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(8))
	ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{
		MaxInflight: 32, MaxQueue: 128}).Handler())
	defer ts.Close()
	client := ts.Client()
	defer client.CloseIdleConnections()

	seeds := []int64{3, 35, 36}
	type job struct{ path, body string }
	var kinds []job
	for _, seed := range seeds {
		src := pokeholes.Render(pokeholes.GenerateProgram(seed))
		kinds = append(kinds,
			job{"/check", checkBody(src)},
			job{"/sweep", sweepBody(src)},
			job{"/triage", checkBody(src)},
		)
	}

	const total = 100
	bodies := make([][]byte, total)
	statuses := make([]int, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := kinds[i%len(kinds)]
			statuses[i], bodies[i] = servePost(t, client, ts.URL+k.path, k.body)
		}()
	}
	wg.Wait()

	for i := 0; i < total; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d (%s): status %d: %s",
				i, kinds[i%len(kinds)].path, statuses[i], bodies[i])
		}
	}
	// Identical requests → byte-identical bodies.
	for i := len(kinds); i < total; i++ {
		if !bytes.Equal(bodies[i], bodies[i%len(kinds)]) {
			t.Errorf("request %d body differs from its identical twin %d",
				i, i%len(kinds))
		}
	}
	// Three programs crossed the service; ~33 copies of each request
	// coalesced onto one engine computation per distinct program.
	if got := eng.Stats().Frontends; got != int64(len(seeds)) {
		t.Errorf("frontends = %d, want %d (one per distinct program)", got, len(seeds))
	}
}

// TestServeIdenticalRequestsCoalesce pins the batching acceptance
// criterion in its sharpest form: N identical concurrent /check requests
// cost exactly one frontend, one backend compile and one trace, and the
// response cache records exactly one miss.
func TestServeIdenticalRequestsCoalesce(t *testing.T) {
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(8))
	srv := eng.NewServer(pokeholes.ServeSpec{MaxInflight: 32, MaxQueue: 128})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	defer client.CloseIdleConnections()

	body := checkBody(pokeholes.Render(pokeholes.GenerateProgram(3)))
	const n = 32
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, out := servePost(t, client, ts.URL+"/check", body)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, out)
			}
			bodies[i] = out
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("identical requests produced different bodies")
		}
	}
	st := eng.Stats()
	if st.Frontends != 1 || st.Compiles != 1 || st.Traces != 1 {
		t.Errorf("engine did repeated work: frontends=%d compiles=%d traces=%d, want 1/1/1",
			st.Frontends, st.Compiles, st.Traces)
	}
	if ss := srv.Stats(); ss.ResponseMisses != 1 {
		t.Errorf("response misses = %d, want 1 (all other requests coalesced or replayed)",
			ss.ResponseMisses)
	}
}

// TestServeAdmissionLimit holds the only processing slot with a streaming
// campaign and asserts the next request is rejected with 429 and a
// Retry-After hint, never queued.
func TestServeAdmissionLimit(t *testing.T) {
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(4))
	ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{
		MaxInflight: 1, MaxQueue: -1, RequestTimeout: time.Minute}).Handler())
	defer ts.Close()
	client := ts.Client()
	defer client.CloseIdleConnections()

	// A long streaming campaign occupies the single slot. Reading the
	// first NDJSON line proves the handler is inside the admission gate.
	campaign := `{"family":"gc","version":"trunk","levels":["O2"],"n":5000,"seed0":1}`
	resp, err := client.Post(ts.URL+"/campaign", "application/json", strings.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign status %d", resp.StatusCode)
	}
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("campaign first line: %v", err)
	}

	status, out := servePost(t, client, ts.URL+"/check",
		checkBody(pokeholes.Render(pokeholes.GenerateProgram(3))))
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (admission queue full): %s", status, out)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(out, &eb); err != nil || eb.Error == "" {
		t.Errorf("429 body not a JSON error: %q", out)
	}

	// The Retry-After hint must be present on the rejection.
	req, _ := http.NewRequest("POST", ts.URL+"/check", strings.NewReader(
		checkBody(pokeholes.Render(pokeholes.GenerateProgram(3)))))
	req.Header.Set("Content-Type", "application/json")
	r2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second rejection status = %d, want 429", r2.StatusCode)
	}
	if ra := r2.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
}

// TestServeDeadline503: a request whose per-request deadline has already
// expired when it reaches the queue fails with 503 and Retry-After.
func TestServeDeadline503(t *testing.T) {
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(2))
	ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{
		RequestTimeout: time.Nanosecond}).Handler())
	defer ts.Close()
	client := ts.Client()
	defer client.CloseIdleConnections()

	req, _ := http.NewRequest("POST", ts.URL+"/check", strings.NewReader(
		checkBody(pokeholes.Render(pokeholes.GenerateProgram(3)))))
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 response missing Retry-After header")
	}
}

// TestServeBadRequests pins the 400/404/405 edges.
func TestServeBadRequests(t *testing.T) {
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(2))
	ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{}).Handler())
	defer ts.Close()
	client := ts.Client()
	defer client.CloseIdleConnections()

	src := pokeholes.Render(pokeholes.GenerateProgram(3))
	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/check", `{"source":`, http.StatusBadRequest},
		{"unknown family", "/check", fmt.Sprintf(`{"source":%q,"family":"icc","version":"trunk","level":"O2"}`, src), http.StatusBadRequest},
		{"unknown version", "/check", fmt.Sprintf(`{"source":%q,"family":"gc","version":"v99","level":"O2"}`, src), http.StatusBadRequest},
		{"unknown level", "/check", fmt.Sprintf(`{"source":%q,"family":"gc","version":"trunk","level":"O9"}`, src), http.StatusBadRequest},
		{"parse error", "/check", `{"source":"int main(","family":"gc","version":"trunk","level":"O2"}`, http.StatusBadRequest},
		{"empty campaign", "/campaign", `{"family":"gc","version":"trunk","n":0}`, http.StatusBadRequest},
		{"bad minimize conjecture", "/minimize", fmt.Sprintf(`{"source":%q,"family":"gc","version":"trunk","level":"O2","conjecture":7,"var":"x"}`, src), http.StatusBadRequest},
		{"unknown sweep version", "/sweep", fmt.Sprintf(`{"source":%q,"family":"gc","versions":["v99"]}`, src), http.StatusBadRequest},
	} {
		status, out := servePost(t, client, ts.URL+tc.path, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, status, tc.want, out)
		}
	}
	resp, err := client.Get(ts.URL + "/check") // GET on a POST route
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /check status = %d, want 405", resp.StatusCode)
	}
}

// TestServeCrossInstanceDeterminism is the load-balancing guarantee: two
// independent engines (fresh caches, different worker counts) must
// produce byte-identical bodies for the same request.
func TestServeCrossInstanceDeterminism(t *testing.T) {
	src := pokeholes.Render(pokeholes.GenerateProgram(35))
	requests := []struct{ path, body string }{
		{"/check", checkBody(src)},
		{"/sweep", sweepBody(src)},
		{"/triage", checkBody(src)},
	}
	var first [][]byte
	for run, workers := range []int{1, 8} {
		eng := pokeholes.NewEngine(pokeholes.WithWorkers(workers))
		ts := httptest.NewServer(eng.NewServer(pokeholes.ServeSpec{}).Handler())
		client := ts.Client()
		for i, req := range requests {
			status, out := servePost(t, client, ts.URL+req.path, req.body)
			if status != http.StatusOK {
				t.Fatalf("run %d %s: status %d: %s", run, req.path, status, out)
			}
			if run == 0 {
				first = append(first, out)
			} else if !bytes.Equal(out, first[i]) {
				t.Errorf("%s body differs between independent instances", req.path)
			}
		}
		client.CloseIdleConnections()
		ts.Close()
	}
}

// TestServeShutdownNoGoroutineLeak runs the full Serve lifecycle — real
// listener, live traffic, a background hunt — cancels the serve context,
// and asserts the graceful drain leaves no goroutine behind (the same
// bracket the campaign/sweep/hunt cancel tests use).
func TestServeShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	corpus := t.TempDir() + "/corpus.jsonl"
	ctx, cancel := context.WithCancel(context.Background())
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(4))
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- eng.Serve(ctx, pokeholes.ServeSpec{
			Listener: ln,
			// Seeds 1-2 carry a single cheap violation between them, so the
			// first two-program batch (and its checkpoint) lands within
			// seconds even under the race detector; the 4096 budget keeps
			// the hunt mid-flight until shutdown interrupts it.
			Hunt: &pokeholes.HuntSpec{Family: pokeholes.GC, Version: "trunk",
				Levels: []string{"O2"}, Budget: 4096, Seed0: 1, BatchSize: 2,
				NoMinimize: true, CorpusPath: corpus},
		})
	}()

	base := "http://" + ln.Addr().String()
	client := &http.Client{}
	status, out := servePost(t, client, base+"/check",
		checkBody(pokeholes.Render(pokeholes.GenerateProgram(3))))
	if status != http.StatusOK {
		t.Fatalf("check status %d: %s", status, out)
	}
	// Wait for the hunt's first batch so shutdown interrupts a hunt that
	// has already checkpointed once (and so /hunt/status carries a
	// progress snapshot).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/hunt/status")
		if err != nil {
			t.Fatal(err)
		}
		var hs pokeholes.HuntStatus
		if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !hs.Configured {
			t.Fatalf("hunt status = %+v, want configured", hs)
		}
		if hs.Progress != nil && hs.Progress.Batch >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hunt never completed its first batch")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after a clean drain", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	// The interrupted hunt checkpointed its corpus on the way out.
	if _, err := os.Stat(corpus); err != nil {
		t.Errorf("hunt corpus not checkpointed on shutdown: %v", err)
	}
	client.CloseIdleConnections()
	waitGoroutinesDrained(t, before)
}
