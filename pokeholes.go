// Package pokeholes is the public facade of the reproduction of "Where Did
// My Variable Go? Poking Holes in Incomplete Debug Information" (ASPLOS
// 2023). It wires the simulated toolchain — MiniC front end, optimizing
// compiler with catalogued debug-information defects, DWARF-like debug
// information, VM, and two debugger engines — to the paper's methodology:
// conjecture checking, culprit triage, and violation-preserving reduction.
//
// Quick start (the v2 session API):
//
//	eng := pokeholes.NewEngine(pokeholes.WithWorkers(8))
//	prog, _ := pokeholes.ParseProgram(src)
//	report, _ := eng.Check(ctx, prog, pokeholes.Config{
//	        Family: pokeholes.GC, Version: "trunk", Level: "O2"})
//	for _, v := range report.Violations { fmt.Println(v) }
//
// Engine holds a fingerprint-keyed frontend/compile/analysis/trace cache
// and a worker pool. Engine.Campaign streams batch results in seed order;
// Engine.Sweep checks one program across a whole version × level matrix
// while lowering it exactly once. The remaining free functions below are
// engine-independent helpers (parsing, rendering, debugger construction).
package pokeholes

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/debugger"
	"repro/internal/dwarf"
	"repro/internal/fuzzgen"
	"repro/internal/metrics"
	"repro/internal/minic"
	"repro/internal/object"
	"repro/internal/opt"
	"repro/internal/triage"
)

// Re-exported configuration types.
type (
	// Config selects a compiler family, version and optimization level.
	Config = compiler.Config
	// Violation is one conjecture violation.
	Violation = conjecture.Violation
	// Trace is a recorded debugging session.
	Trace = debugger.Trace
	// MultiTrace is one single-pass recording seen through several
	// debugger engines (one independent Trace view per engine).
	MultiTrace = debugger.MultiTrace
	// Metrics are the paper's §2 quantitative measures.
	Metrics = metrics.Metrics
	// Schedule is a first-class, serializable pass schedule (an ordered
	// list of registered pass names with per-pass budgets). Configurations
	// have a canonical schedule (compiler.ScheduleFor); Engine.ScheduleReduce
	// searches its subsequences.
	Schedule = opt.Schedule
	// ScheduleReduction is Engine.ScheduleReduce's outcome: the minimal
	// reproducing pass schedule plus the probe count.
	ScheduleReduction = triage.ScheduleReduction
)

// Compiler families.
const (
	// GC is the gcc-like family (native debugger: the gdb-like engine).
	GC = compiler.GC
	// CL is the clang-like family (native debugger: the lldb-like engine).
	CL = compiler.CL
)

// ParseProgram parses, lays out and type-checks MiniC source.
func ParseProgram(src string) (*minic.Program, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	minic.AssignLines(prog)
	if err := minic.Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// GenerateProgram returns the fuzzer's program for a seed (the Csmith
// analogue, §4.1).
func GenerateProgram(seed int64) *minic.Program {
	return fuzzgen.GenerateSeed(seed)
}

// Render returns the canonical source of a program.
func Render(prog *minic.Program) string { return minic.Render(prog) }

// Fingerprint returns the canonical-source fingerprint of a program as a
// fixed-width hex string — the identity the serving layer batches
// requests on and stamps into every response.
func Fingerprint(prog *minic.Program) string {
	return fmt.Sprintf("%016x", minic.Fingerprint(prog))
}

// NativeDebugger returns the reference debugger of a family, configured
// with the catalogued defects of its latest release.
func NativeDebugger(f compiler.Family) debugger.Debugger {
	if compiler.NativeDebugger(f) == "gdb" {
		return debugger.NewGDB(compiler.DebuggerDefects("gdb"))
	}
	return debugger.NewLLDB(compiler.DebuggerDefects("lldb"))
}

// RecordTrace runs exe under dbg with one-shot breakpoints on every
// steppable line, as the paper's checking pipeline does (§4.2).
func RecordTrace(exe *object.Executable, dbg debugger.Debugger) (*Trace, error) {
	return debugger.Record(exe, dbg)
}

// RecordMultiTrace executes exe once and records every given debugger
// engine's view of the same session — the single-pass fan-out behind the
// engine's cross-validation (§4.2).
func RecordMultiTrace(exe *object.Executable, dbgs ...debugger.Debugger) (*MultiTrace, error) {
	rec, err := debugger.NewRecorder(exe, debugger.RecordOpts{}, dbgs...)
	if err != nil {
		return nil, err
	}
	return rec.Run()
}

// Report is the result of checking one program under one configuration.
type Report struct {
	Config     Config
	Trace      *Trace
	Violations []Violation
}

// ClassifyDWARF assigns the paper's four-way DIE-defect category to a
// violation (§5.3), by inspecting the executable's debug information at the
// first line-table address of the violation line.
func ClassifyDWARF(exe *object.Executable, v Violation) (dwarf.Class, error) {
	info, err := exe.DebugInfo()
	if err != nil {
		return "", err
	}
	pcs := info.LinePCs(v.Line)
	if len(pcs) == 0 {
		return "", fmt.Errorf("pokeholes: line %d has no code", v.Line)
	}
	return dwarf.Classify(info, v.Var, pcs[0]), nil
}

// DebuggerByName builds a debugger engine ("gdb" or "lldb") configured
// with the catalogued defects of its latest release.
func DebuggerByName(name string) (Debugger, error) {
	switch name {
	case "gdb":
		return debugger.NewGDB(compiler.DebuggerDefects("gdb")), nil
	case "lldb":
		return debugger.NewLLDB(compiler.DebuggerDefects("lldb")), nil
	}
	return nil, fmt.Errorf("pokeholes: unknown debugger %q", name)
}
