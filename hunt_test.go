package pokeholes_test

import (
	"bytes"
	"context"
	"path/filepath"
	"runtime"
	"testing"

	"repro"
	"repro/internal/corpus"
)

// encodeCorpus reduces a corpus to its canonical JSONL bytes.
func encodeCorpus(t *testing.T, c *corpus.Corpus) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// huntSpec is the spec the determinism tests share: big enough to span
// several batches (so the adaptive reweighting path runs) yet cheap.
func huntSpec() pokeholes.HuntSpec {
	return pokeholes.HuntSpec{
		Family: pokeholes.GC, Version: "trunk", Levels: []string{"O2"},
		Budget: 40, Seed0: 900, BatchSize: 8,
	}
}

// TestHuntDeterministicAcrossWorkers pins the acceptance criterion: a
// hunt with a fixed seed and budget produces a byte-identical corpus —
// same bucket signatures, same counts, same minimized exemplars, same
// feature stats — at 1 worker and at GOMAXPROCS workers.
func TestHuntDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		eng := pokeholes.NewEngine(pokeholes.WithWorkers(workers))
		rep, err := eng.Hunt(context.Background(), huntSpec())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corpus.Len() == 0 {
			t.Fatal("hunt found no buckets; the comparison is vacuous")
		}
		for _, b := range rep.Corpus.Buckets() {
			if !b.Minimized {
				t.Errorf("bucket %s exemplar not minimized", b.Sig)
			}
		}
		return encodeCorpus(t, rep.Corpus)
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !bytes.Equal(serial, parallel) {
		t.Errorf("corpus differs across worker counts:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestHuntResumeMatchesOneShot pins the resume semantics: hunting 40
// programs in one run is byte-identical to hunting 16 then resuming the
// checkpointed corpus for the remaining 24 — and the resumed run never
// re-reports a bucket the corpus already had.
func TestHuntResumeMatchesOneShot(t *testing.T) {
	eng := pokeholes.NewEngine()
	ctx := context.Background()

	oneShot, err := eng.Hunt(ctx, huntSpec())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	spec := huntSpec()
	spec.Budget = 16
	spec.CorpusPath = path
	first, err := pokeholes.NewEngine().Hunt(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := corpus.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeCorpus(t, first.Corpus), encodeCorpus(t, loaded)) {
		t.Fatal("checkpoint does not round-trip the in-memory corpus")
	}

	had := map[corpus.Signature]bool{}
	for _, b := range loaded.Buckets() {
		had[b.Sig] = true
	}
	resumeSpec := huntSpec()
	resumeSpec.Budget = 24
	resumeSpec.Corpus = loaded
	resumeSpec.CorpusPath = path
	resumeSpec.Seed0 = 12345 // must be ignored: the corpus carries the cursor
	second, err := pokeholes.NewEngine().Hunt(ctx, resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range second.NewBuckets {
		if had[b.Sig] {
			t.Errorf("resumed hunt re-reported bucket %s", b.Sig)
		}
	}
	if got, want := encodeCorpus(t, second.Corpus), encodeCorpus(t, oneShot.Corpus); !bytes.Equal(got, want) {
		t.Errorf("resumed corpus differs from one-shot corpus:\nresumed:\n%s\none-shot:\n%s", got, want)
	}
}

// TestHuntStatsAndCurve checks the engine counters and the
// unique-bugs-over-time curve bookkeeping.
func TestHuntStatsAndCurve(t *testing.T) {
	eng := pokeholes.NewEngine()
	spec := huntSpec()
	spec.NoMinimize = true
	var progress []pokeholes.HuntProgress
	spec.Progress = func(p pokeholes.HuntProgress) { progress = append(progress, p) }
	rep, err := eng.Hunt(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	stats := eng.Stats()
	if stats.Buckets != int64(rep.Corpus.Len()) {
		t.Errorf("stats.Buckets = %d, want %d", stats.Buckets, rep.Corpus.Len())
	}
	if stats.DupViolations != int64(rep.Dups) {
		t.Errorf("stats.DupViolations = %d, want %d", stats.DupViolations, rep.Dups)
	}
	if rep.Violations != rep.Dups+len(rep.NewBuckets) {
		t.Errorf("violations %d != dups %d + new buckets %d",
			rep.Violations, rep.Dups, len(rep.NewBuckets))
	}
	if stats.DupViolations > 0 && stats.DupRate <= 0 {
		t.Error("dup rate not computed")
	}
	if len(rep.Curve) != spec.Budget {
		t.Fatalf("curve has %d points, want one per program (%d)", len(rep.Curve), spec.Budget)
	}
	last := 0
	for _, p := range rep.Curve {
		if p.Buckets < last {
			t.Fatal("unique-bugs curve decreased")
		}
		last = p.Buckets
	}
	if last != rep.Corpus.Len() {
		t.Errorf("curve ends at %d buckets, corpus has %d", last, rep.Corpus.Len())
	}
	if want := spec.Budget / spec.BatchSize; len(progress) != want {
		t.Errorf("progress called %d times, want %d", len(progress), want)
	}
	for _, b := range rep.Corpus.Buckets() {
		if b.Minimized {
			t.Error("NoMinimize hunt marked an exemplar minimized")
		}
	}
}

// TestHuntCancelCheckpointsAndResumes: cancelling a hunt mid-run returns
// the partial corpus (and checkpoints it), and resuming it converges to
// the same corpus as an uninterrupted hunt.
func TestHuntCancelCheckpointsAndResumes(t *testing.T) {
	full, err := pokeholes.NewEngine().Hunt(context.Background(), huntSpec())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	spec := huntSpec()
	spec.CorpusPath = path
	spec.Progress = func(p pokeholes.HuntProgress) {
		if p.Batch == 2 {
			cancel()
		}
	}
	rep, err := pokeholes.NewEngine().Hunt(ctx, spec)
	if err == nil {
		t.Fatal("cancelled hunt returned no error")
	}
	if rep == nil || rep.Programs == 0 {
		t.Fatal("cancelled hunt returned no partial report")
	}
	if rep.Programs >= spec.Budget {
		t.Skip("hunt finished before cancellation took effect")
	}

	loaded, err := corpus.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	resume := huntSpec()
	resume.Budget = spec.Budget - loaded.Programs
	resume.Corpus = loaded
	resumed, err := pokeholes.NewEngine().Hunt(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeCorpus(t, resumed.Corpus), encodeCorpus(t, full.Corpus); !bytes.Equal(got, want) {
		t.Errorf("corpus after cancel+resume differs from uninterrupted hunt:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHuntBackfillMinimizesExistingBuckets: a minimizing hunt that
// resumes a NoMinimize corpus reduces the unminimized exemplars it
// inherited before fuzzing anything new.
func TestHuntBackfillMinimizesExistingBuckets(t *testing.T) {
	ctx := context.Background()
	spec := huntSpec()
	spec.Budget = 16
	spec.NoMinimize = true
	first, err := pokeholes.NewEngine().Hunt(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Corpus.Len() == 0 {
		t.Skip("no buckets to backfill")
	}
	inherited := map[corpus.Signature]int{}
	for _, b := range first.Corpus.Buckets() {
		inherited[b.Sig] = b.ExemplarLines
	}
	resume := huntSpec()
	resume.Budget = 8
	resume.Corpus = first.Corpus
	if _, err := pokeholes.NewEngine().Hunt(ctx, resume); err != nil {
		t.Fatal(err)
	}
	shrunk := false
	for sig, lines := range inherited {
		b, ok := first.Corpus.Bucket(sig)
		if !ok {
			t.Fatalf("bucket %s vanished", sig)
		}
		if !b.Minimized {
			t.Errorf("inherited bucket %s not backfilled", sig)
		}
		if b.ExemplarLines < lines {
			shrunk = true
		}
	}
	if !shrunk {
		t.Log("backfill minimized nothing smaller (possible but unusual)")
	}
}

// TestHuntSpecValidation covers the error paths.
func TestHuntSpecValidation(t *testing.T) {
	eng := pokeholes.NewEngine()
	ctx := context.Background()
	if _, err := eng.Hunt(ctx, pokeholes.HuntSpec{Family: pokeholes.GC, Version: "trunk"}); err == nil {
		t.Error("zero budget must fail")
	}
	if _, err := eng.Hunt(ctx, pokeholes.HuntSpec{Family: "frobnicator", Version: "trunk", Budget: 1}); err == nil {
		t.Error("unknown family must fail")
	}
}
