package pokeholes_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro"
)

// reportJSON renders a report deterministically for byte comparison.
func reportJSON(t *testing.T, r *pokeholes.Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepMatchesIndependentChecks pins the acceptance criterion: every
// per-config report of a matrix sweep is byte-identical to what an
// independent Engine.Check of that configuration returns.
func TestSweepMatchesIndependentChecks(t *testing.T) {
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(7)
	mx := pokeholes.FullMatrix(pokeholes.GC)
	sr, err := pokeholes.NewEngine().Sweep(ctx, prog, mx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Reports) != len(mx.Configs()) {
		t.Fatalf("got %d reports, want %d", len(sr.Reports), len(mx.Configs()))
	}
	// A separate engine, so nothing is shared with the sweep.
	checker := pokeholes.NewEngine()
	violations := 0
	for i, cfg := range sr.Configs {
		if sr.Reports[i].Config != cfg {
			t.Fatalf("report %d carries config %s, want %s", i, sr.Reports[i].Config, cfg)
		}
		ind, err := checker.Check(ctx, prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reportJSON(t, sr.Reports[i]), reportJSON(t, ind)) {
			t.Errorf("%s: sweep report differs from independent Check", cfg)
		}
		violations += len(sr.Reports[i].Violations)
	}
	if violations == 0 {
		t.Error("matrix sweep found no violations at all; the comparison is vacuous")
	}
}

// TestSweepLowersFrontendOncePerProgram pins the staging contract: one
// Sweep over a full version × level matrix runs the frontend exactly once,
// even with the engine cache disabled (the module is shared explicitly),
// while the backend compiles once per config.
func TestSweepLowersFrontendOncePerProgram(t *testing.T) {
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(7)
	mx := pokeholes.FullMatrix(pokeholes.GC)
	mx.Measure = true
	for _, cacheSize := range []int{pokeholes.DefaultCacheSize, 0} {
		eng := pokeholes.NewEngine(pokeholes.WithCompileCache(cacheSize))
		if _, err := eng.Sweep(ctx, prog, mx); err != nil {
			t.Fatal(err)
		}
		stats := eng.Stats()
		if stats.Frontends != 1 {
			t.Errorf("cache=%d: sweep ran the frontend %d times, want exactly 1", cacheSize, stats.Frontends)
		}
		// Every config plus one O0 reference per version, nothing more
		// (cached engines may coalesce further, never exceed).
		maxCompiles := int64(len(mx.Configs()) + len(mx.Versions))
		if stats.Compiles > maxCompiles {
			t.Errorf("cache=%d: %d backend compiles for %d configs (max %d)",
				cacheSize, stats.Compiles, len(mx.Configs()), maxCompiles)
		}
	}
}

// TestMatrixCampaignLowersOncePerProgram extends the frontend contract to
// matrix-mode campaigns: N programs over the grid mean exactly N frontend
// runs.
func TestMatrixCampaignLowersOncePerProgram(t *testing.T) {
	eng := pokeholes.NewEngine(pokeholes.WithWorkers(4))
	const n = 5
	results, err := eng.Campaign(context.Background(), pokeholes.CampaignSpec{
		Matrix: &pokeholes.Matrix{Family: pokeholes.GC}, N: n, Seed0: 500})
	if err != nil {
		t.Fatal(err)
	}
	for res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Sweep == nil {
			t.Fatal("matrix campaign result carries no sweep")
		}
		if res.Violations != nil {
			t.Error("matrix campaign must not fill the per-level map")
		}
	}
	if got := eng.Stats().Frontends; got != n {
		t.Errorf("campaign over %d programs ran %d frontends, want exactly %d", n, got, n)
	}
}

// TestSweepDeterministicAcrossWorkers: identical matrices yield identical
// report bytes at any parallelism.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(11)
	mx := pokeholes.FullMatrix(pokeholes.CL)
	mx.Measure = true
	run := func(workers int) []byte {
		eng := pokeholes.NewEngine(pokeholes.WithWorkers(workers))
		sr, err := eng.Sweep(ctx, prog, mx)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for i := range sr.Reports {
			buf.Write(reportJSON(t, sr.Reports[i]))
			b, err := json.Marshal(sr.Metrics[i])
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(8)) {
		t.Error("sweep results differ across worker counts")
	}
}

// TestSweepMeasureMatchesEngineMeasure: the sweep's shared-reference
// metrics equal the per-call Engine.Measure values.
func TestSweepMeasureMatchesEngineMeasure(t *testing.T) {
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(3)
	mx := pokeholes.Matrix{Family: pokeholes.GC, Versions: []string{"trunk"}, Measure: true}
	sr, err := pokeholes.NewEngine().Sweep(ctx, prog, mx)
	if err != nil {
		t.Fatal(err)
	}
	checker := pokeholes.NewEngine()
	for i, cfg := range sr.Configs {
		want, err := checker.Measure(ctx, prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Metrics[i] != want {
			t.Errorf("%s: sweep metrics %+v, Measure %+v", cfg, sr.Metrics[i], want)
		}
	}
}

// TestSweepRollups sanity-checks the Figures 2/3 and Table 4 rollups
// against the raw reports.
func TestSweepRollups(t *testing.T) {
	prog := pokeholes.GenerateProgram(7)
	sr, err := pokeholes.NewEngine().Sweep(context.Background(), prog, pokeholes.FullMatrix(pokeholes.GC))
	if err != nil {
		t.Fatal(err)
	}
	for _, ver := range sr.Matrix.Versions {
		sets := sr.LevelSets(ver)
		dist := sr.LevelSetCounts(ver)
		total := 0
		for _, n := range dist {
			total += n
		}
		if total != len(sets) {
			t.Errorf("%s: distribution total %d != unique violations %d", ver, total, len(sets))
		}
		var unique int
		for _, c := range sr.UniqueByConjecture(ver) {
			unique += c
		}
		if unique != len(sets) {
			t.Errorf("%s: conjecture rollup %d != unique violations %d", ver, unique, len(sets))
		}
	}
	keys := pokeholes.SortedLevelSetKeys(sr.LevelSetCounts("trunk"))
	for i := 1; i < len(keys); i++ {
		if sr.LevelSetCounts("trunk")[keys[i-1]] < sr.LevelSetCounts("trunk")[keys[i]] {
			t.Error("SortedLevelSetKeys not in descending count order")
		}
	}
}

// TestMatrixValidation covers the error paths of Sweep and matrix-mode
// campaigns.
func TestMatrixValidation(t *testing.T) {
	eng := pokeholes.NewEngine()
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(1)
	bad := []pokeholes.Matrix{
		{Family: "frobnicator"},
		{Family: pokeholes.GC, Versions: []string{"v99"}},
		{Family: pokeholes.GC, Levels: []string{"O7"}},
		{Family: pokeholes.CL, Levels: []string{"O1"}}, // O1 is gc-only
	}
	for _, mx := range bad {
		if _, err := eng.Sweep(ctx, prog, mx); err == nil {
			t.Errorf("matrix %+v: expected error", mx)
		}
		if _, err := eng.Campaign(ctx, pokeholes.CampaignSpec{Matrix: &mx, N: 1}); err == nil {
			t.Errorf("campaign matrix %+v: expected error", mx)
		}
	}
	// Defaults fill in: an empty matrix of a valid family is the full grid.
	sr, err := eng.Sweep(ctx, prog, pokeholes.Matrix{Family: pokeholes.GC})
	if err != nil {
		t.Fatal(err)
	}
	want := len(pokeholes.Versions(pokeholes.GC)) * len(pokeholes.OptLevels(pokeholes.GC))
	if len(sr.Configs) != want {
		t.Errorf("defaulted matrix has %d configs, want %d", len(sr.Configs), want)
	}
}

// TestWithStepBudget pins the end-to-end budget plumbing: a starvation
// budget makes every check fail with the VM's step-limit error, and the
// default budget succeeds on the same program.
func TestWithStepBudget(t *testing.T) {
	ctx := context.Background()
	prog := pokeholes.GenerateProgram(7)
	cfg := pokeholes.Config{Family: pokeholes.GC, Version: "trunk", Level: "O2"}
	starved := pokeholes.NewEngine(pokeholes.WithStepBudget(1))
	if _, err := starved.Check(ctx, prog, cfg); err == nil {
		t.Fatal("1-step budget succeeded")
	} else if !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := pokeholes.NewEngine().Check(ctx, prog, cfg); err != nil {
		t.Fatalf("default budget failed: %v", err)
	}
	// The budget holds through the sweep path too.
	if _, err := starved.Sweep(ctx, prog, pokeholes.FullMatrix(pokeholes.GC)); err == nil {
		t.Error("starved sweep succeeded")
	}
}
