package pokeholes

// This file defines the v2 session API. An Engine owns the resources one
// checking session needs — a worker budget, a fingerprint-keyed
// frontend/compile/analysis/trace cache, and the debugger engines — and
// exposes context-aware versions of the paper's pipeline stages. The
// compilation is staged (see internal/compiler): the config-invariant
// frontend is cached once per program — and assembled function by function
// from a per-function cache tier, so matrix sweeps never re-lower a
// program they have already seen, and near-identical programs (reduction
// candidates, fuzz mutants) re-lower only the functions that changed.

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/compiler"
	"repro/internal/conjecture"
	"repro/internal/container"
	"repro/internal/debugger"
	"repro/internal/dwarf"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/minic"
	"repro/internal/object"
	"repro/internal/reduce"
	"repro/internal/store"
	"repro/internal/triage"
)

// Family selects a compiler family (GC or CL).
type Family = compiler.Family

// Debugger is a source-level debugger engine.
type Debugger = debugger.Debugger

// DefaultCacheSize is the compile-cache capacity of NewEngine unless
// overridden with WithCompileCache.
const DefaultCacheSize = 4096

// Engine is a checking session: it compiles, traces, checks, triages and
// minimizes programs, reusing work through a concurrency-safe cache keyed
// by canonical-source fingerprint. An Engine is safe for concurrent use;
// Campaign fans work out over its worker pool.
type Engine struct {
	workers    int
	cacheSize  int
	stepBudget int                       // VM steps per recorded execution; 0 = vm.DefaultMaxStep
	cache      *cache.Cache[string, any] // nil when caching is disabled
	storeDir   string                    // artifact-store directory ("" = no disk tier)
	store      *store.Store              // nil when no artifact store is configured
	storeErr   error                     // why the configured store is disabled, if it is
	debuggers  map[Family]Debugger
	// crossdbg holds, per family, the §4.2 cross-validation counterpart of
	// the configured debugger. Every trace records both engines' views in
	// one VM execution, so CrossValidate never re-executes the binary.
	crossdbg map[Family]Debugger

	// optSnap gates the optimizer's schedule-prefix snapshot tier
	// (WithOptSnapshots; default on, inert without a cache).
	optSnap bool

	frontends atomic.Int64
	compiles  atomic.Int64
	records   atomic.Int64

	// Optimizer pass counters: executions actually performed by backend
	// builds, executions skipped by resuming from a schedule-prefix
	// snapshot, and the builds that resumed from one.
	passesRun     atomic.Int64
	passesSkipped atomic.Int64
	snapshotHits  atomic.Int64

	// Function-granular frontend counters: per-function cache lookups made
	// while assembling modules, the lookups served from cache, and the
	// functions that had to be lowered fresh.
	fnFrontends    atomic.Int64
	fnFrontendHits atomic.Int64
	fnRelowered    atomic.Int64

	// Hunting-loop counters (see hunt.go): unique bug buckets opened,
	// and violations deduplicated into an existing bucket.
	bucketsFound  atomic.Int64
	dupViolations atomic.Int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the campaign worker-pool size (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCompileCache sets the cache capacity in entries. Zero disables
// caching entirely; a negative capacity means unbounded.
func WithCompileCache(entries int) Option {
	return func(e *Engine) { e.cacheSize = entries }
}

// WithDebugger replaces the family's native debugger for every trace the
// engine records.
func WithDebugger(f Family, d Debugger) Option {
	return func(e *Engine) { e.debuggers[f] = d }
}

// WithStepBudget caps the VM steps of every execution the engine records —
// traces, triage's knob-twiddling variants, and reduction's predicate
// runs. Zero or negative keeps vm.DefaultMaxStep.
func WithStepBudget(n int) Option {
	return func(e *Engine) { e.stepBudget = n }
}

// WithArtifactStore adds a persistent disk tier under the compile cache: a
// content-addressed directory of .mcx containers (internal/store) that
// plain builds fall through to — memory hit, then disk hit (decode and
// re-cache), then compute plus write-through. The directory is created if
// needed and may be shared by any number of engines and processes; replicas
// pointed at one directory warm-start off each other's compiles. If the
// store cannot be opened the engine runs memory-only and reports why in
// Stats().StoreError — callers that must not degrade silently (conjserved
// -store) check it right after NewEngine.
func WithArtifactStore(dir string) Option {
	return func(e *Engine) { e.storeDir = dir }
}

// WithOptSnapshots toggles the optimizer's schedule-prefix snapshot tier
// (default on). Snapshots never change what a build produces — outputs are
// byte-identical with or without them — so disabling the tier is only
// useful for measurement: paperbench compares cold against snapshot-warm
// pass counts with it. The tier lives in the compile cache, so
// cache-disabled engines (WithCompileCache(0)) never snapshot regardless.
func WithOptSnapshots(on bool) Option {
	return func(e *Engine) { e.optSnap = on }
}

// NewEngine returns a session with the given options applied.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		workers:   runtime.GOMAXPROCS(0),
		cacheSize: DefaultCacheSize,
		optSnap:   true,
		debuggers: map[Family]Debugger{},
	}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	if e.stepBudget < 0 {
		e.stepBudget = 0
	}
	if e.cacheSize != 0 {
		e.cache = cache.New[string, any](e.cacheSize)
	}
	if e.storeDir != "" {
		e.store, e.storeErr = store.Open(e.storeDir)
	}
	e.crossdbg = map[Family]Debugger{}
	for _, f := range []Family{GC, CL} {
		if _, ok := e.debuggers[f]; !ok {
			e.debuggers[f] = NativeDebugger(f)
		}
		e.crossdbg[f] = crossEngineOf(e.debuggers[f])
	}
	return e
}

// crossEngineOf returns the other debugger engine relative to d — the one
// §4.2 cross-validation checks against. "Other" is relative to the
// engine's configured debugger, so a WithDebugger override flips the
// comparison too.
func crossEngineOf(d Debugger) Debugger {
	if d.Name() == "gdb" {
		return debugger.NewLLDB(compiler.DebuggerDefects("lldb"))
	}
	return debugger.NewGDB(compiler.DebuggerDefects("gdb"))
}

var (
	defaultEngine     *Engine
	defaultEngineOnce sync.Once
)

// Default returns the shared process-wide engine (the fallback session of
// experiments.NewRunner and similar conveniences).
func Default() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

// EngineStats are an engine's lifetime work counters.
type EngineStats struct {
	// Frontends counts actual frontend runs (module assemblies of lowered
	// IR). One program checked across a whole configuration matrix lowers
	// once.
	Frontends int64 `json:"frontends"`
	// FnFrontends counts per-function frontend cache lookups — one per
	// function of every module assembly. FnFrontendHits is the subset
	// served from cache (cloned or shared instead of lowered), and
	// FnRelowered the functions lowered fresh. A one-function edit to an
	// already-seen program costs exactly one re-lower: hits == len(funcs)-1
	// and relowered == 1.
	FnFrontends    int64 `json:"fn_frontends"`
	FnFrontendHits int64 `json:"fn_frontend_hits"`
	FnRelowered    int64 `json:"fn_relowered"`
	// Compiles counts actual backend compilations — optimize + codegen —
	// (cache misses and uncacheable builds such as triage's knob-twiddling
	// variants). The config-invariant frontend is counted separately.
	Compiles int64 `json:"compiles"`
	// Traces counts actual recorded VM executions. One execution serves
	// every engine view of its session (Check and CrossValidate of one
	// build share a single execution).
	Traces int64 `json:"traces"`
	// PassesRun counts the optimizer pass executions backend compilations
	// actually performed; PassesSkipped counts executions avoided by
	// resuming from a schedule-prefix snapshot, and SnapshotHits the
	// compilations that resumed from one. PassesRun + PassesSkipped is
	// what the same work would have cost cold, so the skip ratio is the
	// snapshot tier's win.
	PassesRun     int64 `json:"passes_run"`
	PassesSkipped int64 `json:"passes_skipped"`
	SnapshotHits  int64 `json:"snapshot_hits"`
	// CacheHits and CacheMisses count lookups across the compile, analysis
	// and trace caches; CacheEntries is the current resident count.
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// Buckets counts the unique bug buckets the engine's hunts opened;
	// DupViolations counts hunt violations deduplicated into an
	// existing bucket. DupRate is DupViolations over all bucketed
	// violations (0 when the engine never hunted).
	Buckets       int64   `json:"buckets"`
	DupViolations int64   `json:"dup_violations"`
	DupRate       float64 `json:"dup_rate"`
	// Store carries the disk artifact tier's counters — hits, misses,
	// writes, bytes moved, quarantined entries — all zero when no
	// WithArtifactStore directory is configured. StoreError is non-empty
	// when a configured store failed to open and the engine degraded to
	// memory-only caching.
	Store      store.Stats `json:"store"`
	StoreError string      `json:"store_error,omitempty"`
}

// Stats returns the engine's work counters so far.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{Frontends: e.frontends.Load(), Compiles: e.compiles.Load(), Traces: e.records.Load(),
		FnFrontends: e.fnFrontends.Load(), FnFrontendHits: e.fnFrontendHits.Load(),
		FnRelowered: e.fnRelowered.Load(),
		PassesRun:   e.passesRun.Load(), PassesSkipped: e.passesSkipped.Load(),
		SnapshotHits: e.snapshotHits.Load(),
		Buckets:      e.bucketsFound.Load(), DupViolations: e.dupViolations.Load()}
	if total := s.Buckets + s.DupViolations; total > 0 {
		s.DupRate = float64(s.DupViolations) / float64(total)
	}
	if e.cache != nil {
		s.CacheHits, s.CacheMisses = e.cache.Stats()
		s.CacheEntries = e.cache.Len()
	}
	if e.store != nil {
		s.Store = e.store.Stats()
	}
	if e.storeErr != nil {
		s.StoreError = e.storeErr.Error()
	}
	return s
}

// DebuggerFor returns the debugger the engine uses for a family (the
// native one unless WithDebugger overrode it).
func (e *Engine) DebuggerFor(f Family) Debugger { return e.debuggers[f] }

// cacheableOptions reports whether a compilation can be served from the
// cache: only plain builds qualify, not triage's disabled-pass or
// bisect-limited variants, and not builds that export pass statistics.
// An explicit Schedule stays cacheable — compileFrom keys non-default
// schedules separately by digest, which is what makes ScheduleReduce's
// repeated probes cheap.
func cacheableOptions(o compiler.Options) bool {
	return len(o.Disabled) == 0 && o.BisectLimit <= 0 &&
		len(o.ExtraDefects) == 0 && len(o.SuppressDefects) == 0 && o.Stats == nil
}

// sourceKey identifies a program for caching: its canonical source,
// prefixed by the cheap fingerprint so key comparisons usually fail fast.
// Keying on the full source (not the 64-bit hash alone) means a hash
// collision can never serve another program's artifacts. Render is
// side-effect-free, so sourceKey can run from any goroutine; fan-out paths
// like Sweep still compute it once up front and thread it through srcKey
// parameters purely to avoid re-rendering per configuration.
func sourceKey(prog *minic.Program) string {
	src := minic.Render(prog)
	return fmt.Sprintf("%016x|%s", minic.FingerprintSource(src), src)
}

// engineFnCache adapts the engine's shared LRU to the incremental
// frontend's per-function cache. Values live in the same cache as the
// module/compile/trace tiers, under their own key prefixes. Lookup and hit
// counters are derived from the assembly result in frontend() rather than
// counted here, because the assembler may probe more than one key per
// function (canonical plus rebased-variant).
type engineFnCache struct{ e *Engine }

func (c engineFnCache) GetFunc(key string) (*compiler.FnArtifact, bool) {
	v, ok := c.e.cache.Get("fnfront|" + key)
	if !ok {
		return nil, false
	}
	return v.(*compiler.FnArtifact), true
}

func (c engineFnCache) AddFunc(key string, a *compiler.FnArtifact) {
	c.e.cache.Add("fnfront|"+key, a)
}

func (c engineFnCache) GetGlobals(key string) (*compiler.GlobalsTable, bool) {
	v, ok := c.e.cache.Get("fnglobals|" + key)
	if !ok {
		return nil, false
	}
	return v.(*compiler.GlobalsTable), true
}

func (c engineFnCache) AddGlobals(key string, t *compiler.GlobalsTable) {
	c.e.cache.Add("fnglobals|"+key, t)
}

// engineSnapshots adapts the engine's shared LRU to the optimizer's
// prefix-snapshot tier (compiler.SnapshotStore). One value is created per
// backend build so a hit's resumed-execution count can be folded into the
// engine's pass counters afterwards; the cache slots themselves are shared
// engine-wide under the "optsnap|" prefix.
type engineSnapshots struct {
	e       *Engine
	base    string
	resumed int64 // executions the snapshot hit skipped, if any
}

func (s *engineSnapshots) Lookup(digests []string, maxExec int) (int, *compiler.Snapshot, bool) {
	// Longest prefix first; index 0 is the empty prefix, worthless to
	// resume from. Peek keeps these probes out of the demand hit/miss
	// stats.
	for i := len(digests) - 1; i >= 1; i-- {
		v, ok := s.e.cache.Peek(s.base + "|" + digests[i])
		if !ok {
			continue
		}
		snap := v.(*compiler.Snapshot)
		if maxExec >= 0 && snap.Executions > maxExec {
			continue
		}
		s.resumed = int64(snap.Executions)
		s.e.snapshotHits.Add(1)
		s.e.passesSkipped.Add(s.resumed)
		return i, snap, true
	}
	return 0, nil, false
}

func (s *engineSnapshots) Save(digest string, snap *compiler.Snapshot) {
	s.e.cache.Add(s.base+"|"+digest, snap)
}

// frontend returns the config-invariant lowered IR of prog, computed once
// per canonical-source fingerprint. A module-cache miss does not re-lower
// the whole program: the module is assembled function by function from the
// per-function tier (compiler.FrontendIncremental), so reduction
// candidates and fuzz mutants re-lower only the functions they changed.
// The cached module is never mutated: every backend compilation clones it
// (compiler.CompileFrom). A waiter coalesced onto another goroutine's
// in-flight lowering unblocks with ctx.Err() when ctx is cancelled.
func (e *Engine) frontend(ctx context.Context, prog *minic.Program) (*ir.Module, error) {
	return e.frontendKeyed(ctx, prog, "")
}

// frontendKeyed is frontend with an optionally precomputed sourceKey, so
// callers that already rendered the program (compileFrom computes the key
// for its snapshot tier) don't render it twice.
func (e *Engine) frontendKeyed(ctx context.Context, prog *minic.Program, skey string) (*ir.Module, error) {
	if e.cache == nil {
		e.frontends.Add(1)
		return compiler.Frontend(prog)
	}
	if skey == "" {
		skey = sourceKey(prog)
	}
	key := "frontend|" + skey
	v, err := e.cache.GetOrComputeCtx(ctx, key, func() (any, error) {
		e.frontends.Add(1)
		// skey carries the canonical rendering after its 17-byte hash
		// prefix; hand it to the assembler so the per-function body texts
		// are slices of the string this lookup already paid for.
		mod, relowered, err := compiler.FrontendIncrementalSrc(prog, skey[17:], engineFnCache{e})
		if err != nil {
			return nil, err
		}
		e.fnFrontends.Add(int64(len(prog.Funcs)))
		e.fnFrontendHits.Add(int64(len(prog.Funcs) - relowered))
		e.fnRelowered.Add(int64(relowered))
		return mod, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ir.Module), nil
}

// compileFrom builds cfg's backend (optimize + codegen) over a lowered
// module, serving plain builds from the cache tiers: memory hit, then —
// when WithArtifactStore configured a disk tier — store hit (decode and
// re-cache), then compute plus write-through. A nil mod falls back to the
// (cached) frontend of prog; Sweep passes its shared module explicitly so
// the sharing holds even on cache-disabled engines. An empty srcKey is
// computed from prog (single-caller paths); concurrent paths precompute it.
//
// A store-served Result carries the executable and the pipeline metadata
// triage needs (Applied, PipelineExecutions) but a nil Mod: the optimized
// IR is a compile-time intermediate and is not persisted.
func (e *Engine) compileFrom(ctx context.Context, mod *ir.Module, srcKey string, prog *minic.Program, cfg Config, o compiler.Options) (*compiler.Result, error) {
	if e.cache != nil && srcKey == "" {
		// Needed by both the snapshot tier below and the compile key; the
		// cached frontend pays for this rendering anyway, so computing it
		// up front (frontendKeyed reuses it) costs uncacheable probe
		// builds nothing extra.
		srcKey = sourceKey(prog)
	}
	build := func() (*compiler.Result, error) {
		m := mod
		if m == nil {
			var err error
			if m, err = e.frontendKeyed(ctx, prog, srcKey); err != nil {
				return nil, err
			}
		}
		e.compiles.Add(1)
		oc := o
		var snaps *engineSnapshots
		if e.cache != nil && e.optSnap && o.Stats == nil {
			snaps = &engineSnapshots{e: e, base: "optsnap|" + srcKey + "|" + compiler.SnapshotKeyBase(cfg, o)}
			oc.Snapshots = snaps
		}
		res, err := compiler.CompileFrom(m, cfg, oc)
		if err != nil {
			return nil, err
		}
		run := int64(res.PipelineExecutions)
		if snaps != nil {
			run -= snaps.resumed
		}
		e.passesRun.Add(run)
		return res, nil
	}
	if !cacheableOptions(o) || (e.cache == nil && e.store == nil) {
		return build()
	}
	if srcKey == "" {
		srcKey = sourceKey(prog)
	}
	// An explicit schedule equal to the configuration's canonical one is
	// the same compilation, so it keys to the same slot — default-schedule
	// artifacts, golden fixtures and warm stores stay byte-identical. A
	// genuinely different schedule (a ScheduleReduce probe) gets its digest
	// appended to the memory key and bypasses the disk tier: the .mcx
	// provenance has no schedule field, and probe artifacts are transient.
	schedSuffix := ""
	if o.Schedule != nil && o.Schedule.String() != compiler.ScheduleFor(cfg).String() {
		schedSuffix = "|sched:" + o.Schedule.Digest()
	}
	fetch := build
	if e.store != nil && schedSuffix == "" {
		fetch = func() (*compiler.Result, error) { return e.storeFetch(srcKey, cfg, build) }
	}
	if e.cache == nil {
		return fetch()
	}
	key := fmt.Sprintf("compile|%s|%s|%s|%s%s", srcKey, cfg.Family, cfg.Version, cfg.Level, schedSuffix)
	v, err := e.cache.GetOrComputeCtx(ctx, key, func() (any, error) { return fetch() })
	if err != nil {
		return nil, err
	}
	return v.(*compiler.Result), nil
}

// storeKeyOf derives the disk tier's content address from a sourceKey
// ("%016x|<canonical source>") and a configuration.
func storeKeyOf(srcKey string, cfg Config) store.Key {
	fp, _ := strconv.ParseUint(srcKey[:16], 16, 64)
	return store.Key{
		Fingerprint: fp,
		SourceLen:   len(srcKey) - 17,
		Family:      string(cfg.Family),
		Version:     cfg.Version,
		Level:       cfg.Level,
	}
}

// storeFetch is the disk tier of a plain build: serve the artifact from
// the store if an intact one exists, else run the build and write the
// result through. A failed write-through never fails the compilation —
// the store counts it (Stats().Store.WriteErrors) and the result is
// served from memory as usual.
func (e *Engine) storeFetch(srcKey string, cfg Config, build func() (*compiler.Result, error)) (*compiler.Result, error) {
	key := storeKeyOf(srcKey, cfg)
	if art, ok := e.store.Get(key); ok {
		return &compiler.Result{Exe: art.Exe,
			PipelineExecutions: art.PipelineExecutions, Applied: art.Applied}, nil
	}
	res, err := build()
	if err != nil {
		return nil, err
	}
	_ = e.store.Put(key, &container.Artifact{
		Exe: res.Exe,
		Prov: container.Provenance{
			Family: string(cfg.Family), Version: cfg.Version, Level: cfg.Level,
			Fingerprint: key.Fingerprint, SourceLen: key.SourceLen,
		},
		PipelineExecutions: res.PipelineExecutions,
		Applied:            res.Applied,
	})
	return res, nil
}

// compile builds prog under cfg, serving plain builds from the cache.
func (e *Engine) compile(ctx context.Context, prog *minic.Program, cfg Config, o compiler.Options) (*compiler.Result, error) {
	return e.compileFrom(ctx, nil, "", prog, cfg, o)
}

// compileFn exposes the caching compile as the hook triage and reduce
// accept, bound to ctx so cancellation propagates into their inner loops.
func (e *Engine) compileFn(ctx context.Context) triage.CompileFn {
	return func(prog *minic.Program, cfg compiler.Config, o compiler.Options) (*compiler.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return e.compile(ctx, prog, cfg, o)
	}
}

// Facts returns the static analysis of prog, cached by fingerprint.
func (e *Engine) Facts(prog *minic.Program) *analysis.Facts {
	f, _ := e.facts(context.Background(), prog)
	return f
}

// facts is Facts under the caller's context: a waiter coalesced onto an
// in-flight analysis unblocks with ctx.Err() on cancellation (analysis
// itself never fails, so that is the only error).
func (e *Engine) facts(ctx context.Context, prog *minic.Program) (*analysis.Facts, error) {
	if e.cache == nil {
		return analysis.Analyze(prog), nil
	}
	key := "facts|" + sourceKey(prog)
	v, err := e.cache.GetOrComputeCtx(ctx, key, func() (any, error) { return analysis.Analyze(prog), nil })
	if err != nil {
		return nil, err
	}
	return v.(*analysis.Facts), nil
}

// record runs one single-pass debugger session over exe under the
// engine's step budget: the VM executes once and every given engine
// builds its view at each stop. Traces counts these executions.
func (e *Engine) record(exe *object.Executable, dbgs ...Debugger) (*debugger.MultiTrace, error) {
	e.records.Add(1)
	rec, err := debugger.NewRecorder(exe, debugger.RecordOpts{StepBudget: e.stepBudget}, dbgs...)
	if err != nil {
		return nil, err
	}
	return rec.Run()
}

// traceFrom compiles cfg's build over a lowered module (nil = the cached
// frontend of prog) and records the debugging session once, cached by
// (fingerprint, configuration) — no debugger component: the value is a
// MultiTrace whose view 0 is the family's configured debugger and view 1
// the §4.2 cross-validation engine, both recorded from the same single VM
// execution. srcKey follows the compileFrom convention.
func (e *Engine) traceFrom(ctx context.Context, mod *ir.Module, srcKey string, prog *minic.Program, cfg Config) (*debugger.MultiTrace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	record := func() (*debugger.MultiTrace, error) {
		res, err := e.compileFrom(ctx, mod, srcKey, prog, cfg, compiler.Options{})
		if err != nil {
			return nil, err
		}
		return e.record(res.Exe, e.debuggers[cfg.Family], e.crossdbg[cfg.Family])
	}
	if e.cache == nil {
		return record()
	}
	if srcKey == "" {
		srcKey = sourceKey(prog)
	}
	key := fmt.Sprintf("trace|%s|%s|%s|%s", srcKey, cfg.Family, cfg.Version, cfg.Level)
	v, err := e.cache.GetOrComputeCtx(ctx, key, func() (any, error) { return record() })
	if err != nil {
		return nil, err
	}
	return v.(*debugger.MultiTrace), nil
}

// trace returns the configured debugger's view of the (cached) single-pass
// session of prog under cfg.
func (e *Engine) trace(ctx context.Context, prog *minic.Program, cfg Config) (*Trace, error) {
	mt, err := e.traceFrom(ctx, nil, "", prog, cfg)
	if err != nil {
		return nil, err
	}
	return mt.Views[0], nil
}

// Compile builds prog under cfg and returns the executable, reusing a
// cached build of the same canonical source when available.
func (e *Engine) Compile(ctx context.Context, prog *minic.Program, cfg Config) (*object.Executable, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := e.compile(ctx, prog, cfg, compiler.Options{})
	if err != nil {
		return nil, err
	}
	return res.Exe, nil
}

// CompileResult is Compile exposing the full compiler result (optimized
// IR, applied-pass log) for inspection tools like cmd/minicc.
func (e *Engine) CompileResult(ctx context.Context, prog *minic.Program, cfg Config) (*compiler.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.compile(ctx, prog, cfg, compiler.Options{})
}

// Trace compiles prog under cfg and records the session under the
// engine's debugger for the family (the paper's §4.2 trace).
func (e *Engine) Trace(ctx context.Context, prog *minic.Program, cfg Config) (*Trace, error) {
	return e.trace(ctx, prog, cfg)
}

// TraceAll compiles prog under cfg and returns both engine views — the
// family's configured debugger and the §4.2 cross-validation engine — of
// the binary's one recorded execution.
func (e *Engine) TraceAll(ctx context.Context, prog *minic.Program, cfg Config) (*debugger.MultiTrace, error) {
	return e.traceFrom(ctx, nil, "", prog, cfg)
}

// Check runs the full single-configuration pipeline: compile, trace under
// the family's debugger, and test the three conjectures.
func (e *Engine) Check(ctx context.Context, prog *minic.Program, cfg Config) (*Report, error) {
	tr, err := e.trace(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	facts, err := e.facts(ctx, prog)
	if err != nil {
		return nil, err
	}
	return &Report{Config: cfg, Trace: tr,
		Violations: conjecture.CheckAll(facts, tr)}, nil
}

// Measure computes line coverage and availability of variables of cfg's
// build of prog against its -O0 counterpart (§2). The O0 reference trace
// is cached, so measuring several levels of one program records it once.
func (e *Engine) Measure(ctx context.Context, prog *minic.Program, cfg Config) (Metrics, error) {
	refCfg := cfg
	refCfg.Level = "O0"
	ref, err := e.trace(ctx, prog, refCfg)
	if err != nil {
		return Metrics{}, err
	}
	tr, err := e.trace(ctx, prog, cfg)
	if err != nil {
		return Metrics{}, err
	}
	return metrics.Compute(tr, ref), nil
}

// Triage identifies the culprit optimization behind a violation (§4.3).
// The baseline build is served from the cache when Check already compiled
// the program; only the knob-twiddling variant builds run fresh.
func (e *Engine) Triage(ctx context.Context, prog *minic.Program, cfg Config, v Violation) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	facts, err := e.facts(ctx, prog)
	if err != nil {
		return "", err
	}
	tg := triage.Target{Prog: prog, Facts: facts, Cfg: cfg, Key: v.Key(),
		Compile: e.compileFn(ctx), Debugger: e.debuggers[cfg.Family], StepBudget: e.stepBudget}
	return triage.Culprit(tg)
}

// ScheduleReduce delta-debugs cfg's canonical pass schedule down to a
// minimal subsequence that still reproduces the violation — the
// schedule-granular deepening of Triage, which stops at one culprit pass.
// Every probe compiles an explicit candidate schedule through the
// engine's caching compile, so after any prior build of prog (a Check,
// say) probes re-run Optimize+Codegen from the cached lowered module and
// perform zero frontend executions. The reduction is sequential and
// deterministic: the same (prog, cfg, violation) yields byte-identical
// results at any worker count.
func (e *Engine) ScheduleReduce(ctx context.Context, prog *minic.Program, cfg Config, v Violation) (*ScheduleReduction, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	facts, err := e.facts(ctx, prog)
	if err != nil {
		return nil, err
	}
	tg := triage.Target{Prog: prog, Facts: facts, Cfg: cfg, Key: v.Key(),
		Compile: e.compileFn(ctx), Debugger: e.debuggers[cfg.Family], StepBudget: e.stepBudget}
	return triage.ScheduleReduce(tg)
}

// Minimize shrinks prog while preserving the violation and its culprit
// (§4.4). An empty culprit skips the culprit-preservation check. On
// context cancellation the best reduction found so far is returned.
func (e *Engine) Minimize(ctx context.Context, prog *minic.Program, cfg Config, v Violation, culprit string) *minic.Program {
	pred := reduce.ViolationPredicateWith(cfg, v.Conjecture, v.Var, culprit,
		e.compileFn(ctx), e.debuggers[cfg.Family], e.stepBudget)
	return reduce.Reduce(prog, pred)
}

// ClassifyDWARF assigns the paper's four-way DIE-defect category to a
// violation (§5.3) on the engine's (cached) build of prog under cfg.
func (e *Engine) ClassifyDWARF(ctx context.Context, prog *minic.Program, cfg Config, v Violation) (dwarf.Class, error) {
	exe, err := e.Compile(ctx, prog, cfg)
	if err != nil {
		return "", err
	}
	return ClassifyDWARF(exe, v)
}

// CrossValidate revalidates a violation in the other debugger engine
// (§4.2): a violation that disappears there points at the checking
// debugger rather than the compiler. "Other" is relative to the engine's
// configured debugger for the family, so a WithDebugger override flips
// the comparison too. The other engine's view was recorded alongside the
// primary one in the binary's single execution, so cross-validating after
// a Check re-runs nothing — it reads the second view of the same session.
func (e *Engine) CrossValidate(ctx context.Context, prog *minic.Program, cfg Config, v Violation) (bool, error) {
	mt, err := e.traceFrom(ctx, nil, "", prog, cfg)
	if err != nil {
		return false, err
	}
	tr := mt.Views[1]
	facts, err := e.facts(ctx, prog)
	if err != nil {
		return false, err
	}
	for _, got := range conjecture.CheckAll(facts, tr) {
		if got.Key() == v.Key() {
			return true, nil
		}
	}
	return false, nil
}
